// Reader/writer fairness on a shared cache: several readers hammer a
// KyotoCabinet-style hash database while one writer updates it. A
// reader-preference rwlock would starve the writer to a handful of writes
// (the paper measures <10 in 30s); the RW-SCL's 9:1 read:write slices
// guarantee the writer 10% of the lock opportunity, whatever the reader
// population does.
package main

import (
	"fmt"
	"time"

	"scl/internal/apps/kyoto"
)

func main() {
	res := kyoto.RunReal(kyoto.RealConfig{
		Readers:     6,
		Writers:     1,
		Duration:    1500 * time.Millisecond,
		Entries:     100_000,
		ReadWeight:  9,
		WriteWeight: 1,
		// A period well above Go's scheduling latency so slices are usable
		// even on a single, oversubscribed CPU (the paper's 2ms assumes
		// dedicated cores; see DESIGN.md).
		Period: 50 * time.Millisecond,
	})
	st := res.Stats
	fmt.Printf("readers: %8d ops (%.0f ops/sec), total shared hold %v\n",
		st.ReaderOps, res.ReaderTput, st.ReaderHold.Round(time.Millisecond))
	fmt.Printf("writer:  %8d ops (%.0f ops/sec), exclusive hold   %v\n",
		st.WriterOps, res.WriterTput, st.WriterHold.Round(time.Millisecond))
	fmt.Printf("writer exclusive hold is %.1f%% of the run (configured share: 10%%)\n",
		100*float64(st.WriterHold)/float64(st.Elapsed))
	fmt.Println("a reader-preference lock would have starved the writer entirely")
}
