// Per-request lock deadlines with LockContext: a request-serving goroutine
// bounds how long it will wait for a contended scl.Mutex instead of
// blocking indefinitely behind a slice owner or a penalty.
//
// A "hog" entity monopolizes the lock with long critical sections; "serve"
// handles requests that each carry a context.WithTimeout deadline. When the
// wait exceeds the request budget, LockContext returns ctx.Err(), the lock
// is NOT held, and the request fails fast (degraded reply, retry, shed) —
// while the lock's accounting shows the abandon in the Cancels counter.
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"scl"
)

func main() {
	m := scl.NewMutex(scl.Options{Slice: 5 * time.Millisecond})
	hog := m.Register().SetName("hog")
	serve := m.Register().SetName("serve")

	stop := time.Now().Add(time.Second)
	var wg sync.WaitGroup

	// The hog holds the lock in long bursts: some requests will meet their
	// deadline mid-slice or during the hog's penalty and must give up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			hog.Lock()
			time.Sleep(8 * time.Millisecond)
			hog.Unlock()
		}
	}()

	var served, shed int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			// Each request will wait at most 3ms for the lock.
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
			err := serve.LockContext(ctx)
			if err != nil {
				cancel()
				shed++ // deadline hit: not holding the lock, fail fast
				continue
			}
			time.Sleep(500 * time.Microsecond) // the critical section
			serve.Unlock()
			cancel()
			served++
		}
	}()
	wg.Wait()

	s := m.Stats()
	fmt.Printf("served %d requests, shed %d on deadline\n", served, shed)
	fmt.Printf("stats: serve acquired %d times, abandoned %d waits\n",
		s.Acquisitions[serve.ID()], s.Cancels[serve.ID()])
	fmt.Printf("hog   held %v, serve held %v — opportunity stays fair (Jain %.3f)\n",
		s.Hold[hog.ID()].Round(time.Millisecond),
		s.Hold[serve.ID()].Round(time.Millisecond),
		s.JainLOT(hog.ID(), serve.ID()))
}
