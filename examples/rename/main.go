// Bully and victim on a global rename lock (the paper's Linux
// s_vfs_rename_mutex scenario, §5.5.3): a bully process renames into a
// 100K-entry directory — each rename linearly scans the directory and
// holds the global lock for milliseconds — while a victim renames between
// empty directories in microseconds. Under a barging mutex the victim
// stalls behind the bully; under a k-SCL (zero-slice scheduler-cooperative
// lock) the bully is banned after each over-long hold and the victim runs
// almost unimpeded.
package main

import (
	"fmt"
	"sync"
	"time"

	"scl"
	"scl/internal/metrics"
	"scl/internal/vfs"
)

func run(lockKind string) {
	fs := vfs.New()
	for _, d := range []string{"bsrc", "bdst", "vsrc", "vdst"} {
		if err := fs.Mkdir(d); err != nil {
			panic(err)
		}
	}
	if err := fs.Populate("bdst", "f-", 100_000); err != nil {
		panic(err)
	}

	var bullyLock, victimLock sync.Locker
	switch lockKind {
	case "k-SCL":
		m := scl.NewMutex(scl.Options{Slice: -1}) // zero slice: k-SCL
		bullyLock = m.Register().SetName("bully")
		victimLock = m.Register().SetName("victim")
	default:
		m := &scl.BargingMutex{}
		bullyLock, victimLock = m, m
	}

	deadline := time.Now().Add(time.Second)
	var wg sync.WaitGroup
	var victimLats []time.Duration
	var bullyOps, victimOps int64
	proc := func(lk sync.Locker, src, dst string, ops *int64, lats *[]time.Duration) {
		defer wg.Done()
		i := 0
		for time.Now().Before(deadline) {
			name := fmt.Sprintf("f%d", i)
			i++
			if err := fs.Create(src, name); err != nil {
				panic(err)
			}
			start := time.Now()
			lk.Lock()
			if err := fs.Rename(src, name, dst, name); err != nil {
				panic(err)
			}
			lk.Unlock()
			if lats != nil {
				*lats = append(*lats, time.Since(start))
			}
			if err := fs.Unlink(dst, name); err != nil {
				panic(err)
			}
			*ops++
		}
	}
	wg.Add(2)
	go proc(bullyLock, "bsrc", "bdst", &bullyOps, nil)
	go proc(victimLock, "vsrc", "vdst", &victimOps, &victimLats)
	wg.Wait()

	s := metrics.Summarize(victimLats)
	fmt.Printf("%-8s bully: %5d renames | victim: %7d renames, latency p50=%v p99=%v max=%v\n",
		lockKind, bullyOps, victimOps, s.P50, s.P99, s.Max)
}

func main() {
	fmt.Println("global rename lock, 1s run, bully renames into a 100K-entry directory:")
	run("barging")
	run("k-SCL")
}
