// Diagnose-then-fix: the full workflow for scheduler subversion.
//
//  1. Wrap your existing lock with lockstat and run the workload: the
//     report shows skewed hold times, a high held fraction, and a low
//     fairness index — the paper's §2.3 symptoms.
//  2. Replace the lock with a scheduler-cooperative scl.Mutex and re-run:
//     lock opportunity equalizes.
package main

import (
	"fmt"
	"sync"
	"time"

	"scl"
	"scl/lockstat"
)

// workload: an "analytics" goroutine with long critical sections competes
// with a "frontend" goroutine that needs many short ones.
func workload(analytics, frontend interface {
	Lock()
	Unlock()
}) {
	deadline := time.Now().Add(time.Second)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			analytics.Lock()
			time.Sleep(10 * time.Millisecond) // heavy scan under the lock
			analytics.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			frontend.Lock()
			time.Sleep(500 * time.Microsecond) // quick lookup
			frontend.Unlock()
		}
	}()
	wg.Wait()
}

func main() {
	// Step 1: measure the existing (barging) lock.
	plain := lockstat.Wrap(&scl.BargingMutex{})
	workload(plain.Handle("analytics"), plain.Handle("frontend"))
	rep := plain.Report()
	fmt.Println(rep)
	fmt.Printf("held %.0f%% of the run, Jain(LOT) %.2f -> subverted: %v\n\n",
		rep.HeldFraction*100, rep.JainLOT, rep.Subverted())

	// Step 2: swap in a scheduler-cooperative lock and re-measure (scl
	// carries its own per-entity accounting, so no wrapper is needed).
	m := scl.NewMutex(scl.Options{Slice: time.Millisecond})
	analytics := m.Register().SetName("analytics")
	frontend := m.Register().SetName("frontend")
	workload(analytics, frontend)
	s := m.Stats()
	fmt.Printf("with scl.Mutex: analytics held %v, frontend held %v, Jain %.2f\n",
		s.Hold[analytics.ID()].Round(time.Millisecond),
		s.Hold[frontend.ID()].Round(time.Millisecond),
		s.JainHold(analytics.ID(), frontend.ID()))
}
