// Quickstart for scheduler-cooperative locks: two goroutines with very
// different critical-section lengths share one scl.Mutex. A classic lock
// would let the long-CS goroutine dominate; the SCL equalizes their lock
// opportunity, so both end up holding the lock for about the same total
// time.
package main

import (
	"fmt"
	"sync"
	"time"

	"scl"
)

func main() {
	// One Mutex; each goroutine registers as its own schedulable entity
	// (the Go analogue of the paper's per-thread state).
	m := scl.NewMutex(scl.Options{Slice: time.Millisecond})
	hog := m.Register().SetName("hog")     // 10ms critical sections
	light := m.Register().SetName("light") // 1ms critical sections

	deadline := time.Now().Add(time.Second)
	var wg sync.WaitGroup
	work := func(h *scl.Handle, cs time.Duration) {
		defer wg.Done()
		for time.Now().Before(deadline) {
			h.Lock()
			time.Sleep(cs) // the critical section
			h.Unlock()
		}
	}
	wg.Add(2)
	go work(hog, 10*time.Millisecond)
	go work(light, time.Millisecond)
	wg.Wait()

	s := m.Stats()
	fmt.Printf("hog   held the lock %8v in %d acquisitions\n",
		s.Hold[hog.ID()].Round(time.Millisecond), s.Acquisitions[hog.ID()])
	fmt.Printf("light held the lock %8v in %d acquisitions\n",
		s.Hold[light.ID()].Round(time.Millisecond), s.Acquisitions[light.ID()])
	fmt.Printf("hold-time fairness (Jain): %.3f (1.0 = perfectly fair)\n",
		s.JainHold(hog.ID(), light.ID()))
}
