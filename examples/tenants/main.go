// Multi-tenant lock sharing with work-conserving groups (the paper's §6
// classification, implemented): two tenants each run several worker
// goroutines against one shared lock. Registering each tenant as ONE
// schedulable entity — workers are Siblings sharing the entity — gives
// every tenant the same lock opportunity no matter how many workers it
// spawns, and lets a tenant's workers hand the lock around inside their
// slice so it never idles while the tenant has work.
package main

import (
	"fmt"
	"sync"
	"time"

	"scl"
)

func main() {
	m := scl.NewMutex(scl.Options{Slice: 2 * time.Millisecond})

	// Tenant A scales out to 3 bursty workers (real work between lock
	// uses); tenant B has a single busy worker. Per-thread locks would
	// hand A 3/4 of the lock; per-tenant entities keep the split 50:50,
	// and A's workers hand the lock around inside A's slice so the burst
	// gaps don't waste it.
	tenantA := m.Register().SetName("tenant-a")
	tenantB := m.Register().SetName("tenant-b")

	deadline := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	var opsA, opsB int64
	var mu sync.Mutex
	work := func(h *scl.Handle, ops *int64, ncs time.Duration) {
		defer wg.Done()
		for time.Now().Before(deadline) {
			h.Lock()
			time.Sleep(300 * time.Microsecond) // critical section
			h.Unlock()
			if ncs > 0 {
				time.Sleep(ncs) // tenant-local work between lock uses
			}
			mu.Lock()
			*ops++
			mu.Unlock()
		}
	}
	wg.Add(4)
	go work(tenantA, &opsA, 600*time.Microsecond)
	go work(tenantA.Sibling(), &opsA, 600*time.Microsecond) // same entity
	go work(tenantA.Sibling(), &opsA, 600*time.Microsecond)
	go work(tenantB, &opsB, 0) // one busy worker
	wg.Wait()

	s := m.Stats()
	ha, hb := s.Hold[tenantA.ID()], s.Hold[tenantB.ID()]
	fmt.Printf("tenant A (3 workers): %5d ops, held %v\n", opsA, ha.Round(time.Millisecond))
	fmt.Printf("tenant B (1 worker):  %5d ops, held %v\n", opsB, hb.Round(time.Millisecond))
	// Per-thread accounting would give A ~3x B. Per-tenant entities pull
	// the split toward 1:1 (B's single worker loses a little of its slice
	// to sleep/wake latency on a loaded machine, so it lands above 1).
	fmt.Printf("hold ratio A/B: %.2f (per-thread locks would give ~3.0)\n",
		float64(ha)/float64(hb))
}
