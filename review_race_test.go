package scl

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Throwaway review test: two sibling handles of one entity plus a foreign
// entity hammer the lock with a tiny slice. If mutual exclusion ever
// breaks (two concurrent holders), the guarded counter detects it.
func TestReviewMutualExclusion(t *testing.T) {
	m := NewMutex(Options{Slice: 50 * time.Microsecond})
	hA := m.Register()
	hA2 := hA.Sibling()
	hA3 := hA.Sibling()
	hB := m.Register()

	var inCS atomic.Int32
	var violations atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup

	work := func(h *Handle) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Lock()
			if inCS.Add(1) != 1 {
				violations.Add(1)
			}
			for i := 0; i < 200; i++ {
				if inCS.Load() != 1 {
					violations.Add(1)
					break
				}
			}
			inCS.Add(-1)
			h.Unlock()
		}
	}
	wg.Add(4)
	go work(hA)
	go work(hA2)
	go work(hA3)
	go work(hB)

	time.Sleep(3 * time.Second)
	close(stop)
	wg.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("mutual exclusion violated %d times", n)
	}
}
