package scl_test

// Scenario-level benchmarks: each corpus scenario runs end to end on
// the two deterministic substrates (the simulator and the real lock
// under the deterministic checker), reporting throughput (grants/op)
// and fairness (jain-hold) alongside ns/op. `make bench` records the
// keys in BENCH_scl.json, so the trajectory tracks how scenario-scale
// behaviour — not just single-operation latency — evolves.
//
// The wall-clock substrate is deliberately absent here: its iterations
// sleep real time, which makes b.N scaling both slow and noisy. Wall
// coverage lives in TestScenarioWall and `make scenarios`.

import (
	"path/filepath"
	"testing"

	"scl/internal/scenario"
)

func benchScenario(b *testing.B, name, substrate string) {
	s, err := scenario.LoadFile(filepath.Join("internal", "scenario", "testdata", name+scenario.CorpusExt))
	if err != nil {
		b.Fatal(err)
	}
	c, err := scenario.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	var grants int
	var jain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := scenario.Run(c, substrate)
		if err != nil {
			b.Fatal(err)
		}
		grants = len(r.Grants)
		jain = scenario.JainHold(r)
	}
	b.ReportMetric(float64(grants), "grants/op")
	b.ReportMetric(jain, "jain-hold")
}

func benchScenarioCorpus(b *testing.B, substrate string) {
	for _, name := range []string{"ramp", "diurnal", "herd", "reader-flood", "tenant-churn", "cancel-storm"} {
		name := name
		b.Run(name, func(b *testing.B) { benchScenario(b, name, substrate) })
	}
}

func BenchmarkScenarioSim(b *testing.B)   { benchScenarioCorpus(b, scenario.SubstrateSim) }
func BenchmarkScenarioCheck(b *testing.B) { benchScenarioCorpus(b, scenario.SubstrateCheck) }
