package lockstat

import (
	"sync"
	"testing"
	"time"
)

// nopLock is a Locked that never blocks, letting tests drive lockstat's
// bookkeeping through handle sequences a real mutex would forbid (a
// release racing a peer's acquisition).
type nopLock struct{}

func (nopLock) Lock()   {}
func (nopLock) Unlock() {}

// TestReportEdgeCases drives Report through the degenerate shapes the
// accounting must survive: a lock nobody touched, a single entity, and
// an overlap where a handle releases after a peer has already been
// recorded as holder (its release must not be attributed or corrupt the
// peer's in-flight hold).
func TestReportEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		run  func() Report
		want func(t *testing.T, rep Report)
	}{
		{
			name: "empty",
			run: func() Report {
				l := Wrap(&sync.Mutex{})
				time.Sleep(2 * time.Millisecond)
				return l.Report()
			},
			want: func(t *testing.T, rep Report) {
				if len(rep.Entities) != 0 {
					t.Fatalf("%d entities on an untouched lock", len(rep.Entities))
				}
				if rep.JainLOT != 1 {
					t.Errorf("JainLOT = %v on an untouched lock, want 1 (vacuously fair)", rep.JainLOT)
				}
				if rep.Idle < rep.Elapsed/2 {
					t.Errorf("idle %v not dominating elapsed %v on an untouched lock", rep.Idle, rep.Elapsed)
				}
				if rep.Subverted() {
					t.Error("untouched lock reported as subverting")
				}
			},
		},
		{
			name: "one-entity",
			run: func() Report {
				l := Wrap(&sync.Mutex{})
				h := l.Handle("only")
				for i := 0; i < 3; i++ {
					h.Lock()
					time.Sleep(time.Millisecond)
					h.Unlock()
				}
				return l.Report()
			},
			want: func(t *testing.T, rep Report) {
				if len(rep.Entities) != 1 {
					t.Fatalf("%d entities, want 1", len(rep.Entities))
				}
				e := rep.Entities[0]
				if e.Name != "only" || e.Ops != 3 {
					t.Errorf("entity = %q/%d ops, want only/3", e.Name, e.Ops)
				}
				if e.Hold <= 0 {
					t.Errorf("hold %v, want > 0", e.Hold)
				}
				if e.LOT != e.Hold+rep.Idle {
					t.Errorf("LOT %v != hold %v + idle %v (paper eq. 1)", e.LOT, e.Hold, rep.Idle)
				}
				if rep.JainLOT != 1 {
					t.Errorf("JainLOT = %v with one entity, want 1", rep.JainLOT)
				}
			},
		},
		{
			name: "overlap",
			run: func() Report {
				// a acquires, then b is recorded as holder before a
				// releases; a's release must be dropped (not attributed),
				// and b's hold must be recorded intact.
				l := Wrap(nopLock{})
				a, b := l.Handle("a"), l.Handle("b")
				a.Lock()
				b.Lock()
				a.Unlock() // non-holder release: dropped
				time.Sleep(time.Millisecond)
				b.Unlock()
				return l.Report()
			},
			want: func(t *testing.T, rep Report) {
				if len(rep.Entities) != 2 {
					t.Fatalf("%d entities, want 2", len(rep.Entities))
				}
				byName := map[string]EntityReport{}
				for _, e := range rep.Entities {
					byName[e.Name] = e
				}
				if got := byName["a"].Ops; got != 0 {
					t.Errorf("a completed %d ops, want 0 (its release raced b's acquisition)", got)
				}
				if got := byName["b"].Ops; got != 1 {
					t.Errorf("b completed %d ops, want 1", got)
				}
				if byName["b"].Hold <= 0 {
					t.Errorf("b hold %v, want > 0", byName["b"].Hold)
				}
			},
		},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.want(t, tc.run())
		})
	}
}
