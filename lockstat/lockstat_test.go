package lockstat

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBasicAccounting(t *testing.T) {
	l := Wrap(&sync.Mutex{})
	h := l.Handle("worker")
	h.Lock()
	time.Sleep(10 * time.Millisecond)
	h.Unlock()
	time.Sleep(5 * time.Millisecond)
	rep := l.Report()
	if len(rep.Entities) != 1 {
		t.Fatalf("%d entities", len(rep.Entities))
	}
	e := rep.Entities[0]
	if e.Name != "worker" || e.Ops != 1 {
		t.Fatalf("entity %+v", e)
	}
	if e.Hold < 9*time.Millisecond {
		t.Fatalf("hold %v, want ~10ms", e.Hold)
	}
	if rep.Idle < 4*time.Millisecond {
		t.Fatalf("idle %v, want ~5ms+", rep.Idle)
	}
	if e.LOT != e.Hold+rep.Idle {
		t.Fatalf("LOT %v != hold+idle %v", e.LOT, e.Hold+rep.Idle)
	}
}

func TestHandleReuseByName(t *testing.T) {
	l := Wrap(&sync.Mutex{})
	a1 := l.Handle("a")
	a2 := l.Handle("a")
	if a1.e != a2.e {
		t.Fatal("same name produced distinct entities")
	}
}

func TestSubversionDetection(t *testing.T) {
	// A hog holding 20ms vs a light 1ms under a plain mutex: held fraction
	// high, LOT skewed -> subverted.
	l := Wrap(&sync.Mutex{})
	hog := l.Handle("hog")
	light := l.Handle("light")
	for i := 0; i < 5; i++ {
		hog.Lock()
		time.Sleep(8 * time.Millisecond)
		hog.Unlock()
		light.Lock()
		time.Sleep(500 * time.Microsecond)
		light.Unlock()
	}
	rep := l.Report()
	if !rep.Subverted() {
		t.Fatalf("subversion not detected: held %.2f jain %.3f", rep.HeldFraction, rep.JainLOT)
	}
	if rep.Entities[0].Name != "hog" {
		t.Fatalf("entities not sorted by hold: %s first", rep.Entities[0].Name)
	}
}

func TestBalancedNotSubverted(t *testing.T) {
	l := Wrap(&sync.Mutex{})
	a := l.Handle("a")
	b := l.Handle("b")
	for i := 0; i < 10; i++ {
		a.Lock()
		time.Sleep(time.Millisecond)
		a.Unlock()
		b.Lock()
		time.Sleep(time.Millisecond)
		b.Unlock()
	}
	if rep := l.Report(); rep.Subverted() {
		t.Fatalf("balanced usage flagged: held %.2f jain %.3f", rep.HeldFraction, rep.JainLOT)
	}
}

func TestConcurrentUse(t *testing.T) {
	l := Wrap(&sync.Mutex{})
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := l.Handle(name)
			for j := 0; j < 1000; j++ {
				h.Lock()
				counter++
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 4000 {
		t.Fatalf("counter %d", counter)
	}
	rep := l.Report()
	var ops int64
	for _, e := range rep.Entities {
		ops += e.Ops
	}
	if ops != 4000 {
		t.Fatalf("recorded ops %d", ops)
	}
}

func TestReportRendering(t *testing.T) {
	l := Wrap(&sync.Mutex{})
	h := l.Handle("x")
	h.Lock()
	h.Unlock()
	out := l.Report().String()
	if !strings.Contains(out, "lockstat report") || !strings.Contains(out, "x") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestWorksWithSCLHandles(t *testing.T) {
	// lockstat wraps anything with Lock/Unlock — including an scl Handle,
	// letting you measure an SCL the same way as a plain mutex.
	type locker interface {
		Lock()
		Unlock()
	}
	var _ locker = (*Handle)(nil)
}
