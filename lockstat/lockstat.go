package lockstat

import (
	"sort"
	"sync"
	"time"

	"scl/internal/metrics"
)

// Locked is the minimal lock interface lockstat can wrap.
type Locked interface {
	Lock()
	Unlock()
}

// L instruments an underlying lock. Create with Wrap; obtain one Handle
// per goroutine (or per any entity whose usage you want attributed).
type L struct {
	inner Locked

	mu       sync.Mutex
	entities map[string]*entity
	holder   *entity
	holdFrom time.Duration
	idleFrom time.Duration
	idle     time.Duration
	started  time.Duration
}

type entity struct {
	name  string
	holds []time.Duration
	waits []time.Duration
	hold  time.Duration
	ops   int64
}

// Wrap instruments lock.
func Wrap(lock Locked) *L {
	now := mono()
	return &L{
		inner:    lock,
		entities: make(map[string]*entity),
		idleFrom: now,
		started:  now,
	}
}

var base = time.Now()

func mono() time.Duration { return time.Since(base) }

// Handle attributes acquisitions to a named entity. Handles must not be
// shared between concurrent goroutines.
type Handle struct {
	l *L
	e *entity
}

// Handle returns the named entity's handle, creating it on first use.
func (l *L) Handle(name string) *Handle {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entities[name]
	if !ok {
		e = &entity{name: name}
		l.entities[name] = e
	}
	return &Handle{l: l, e: e}
}

// Lock acquires the wrapped lock, recording the wait time.
func (h *Handle) Lock() {
	start := mono()
	h.l.inner.Lock()
	now := mono()
	h.l.mu.Lock()
	h.e.waits = append(h.e.waits, now-start)
	h.l.idle += now - h.l.idleFrom
	h.l.holder = h.e
	h.l.holdFrom = now
	h.l.mu.Unlock()
}

// Unlock releases the wrapped lock, recording the hold time.
func (h *Handle) Unlock() {
	now := mono()
	h.l.mu.Lock()
	if h.l.holder == h.e {
		d := now - h.l.holdFrom
		h.e.holds = append(h.e.holds, d)
		h.e.hold += d
		h.e.ops++
		h.l.holder = nil
		h.l.idleFrom = now
	}
	h.l.mu.Unlock()
	h.l.inner.Unlock()
}

// EntityReport is one entity's usage summary.
type EntityReport struct {
	Name string
	// Ops is the number of completed acquisitions.
	Ops int64
	// Hold is cumulative lock hold time.
	Hold time.Duration
	// LOT is the entity's lock opportunity time (paper eq. 1): its own
	// hold time plus the lock's idle time.
	LOT time.Duration
	// HoldDist and WaitDist summarize the hold and wait distributions.
	HoldDist metrics.Summary
	WaitDist metrics.Summary
}

// Report is a point-in-time view of the instrumented lock.
type Report struct {
	// Entities, sorted by descending hold time.
	Entities []EntityReport
	// Idle is how long the lock was unheld.
	Idle time.Duration
	// Elapsed is the time since Wrap.
	Elapsed time.Duration
	// JainLOT is Jain's fairness index over the entities' lock
	// opportunity times: 1.0 is perfectly fair; near 1/n means one entity
	// dominates (paper §3.2).
	JainLOT float64
	// HeldFraction is the share of elapsed time the lock was held — when
	// high, combined with asymmetric holds, the lock (not the scheduler)
	// is deciding who runs (paper §2.3).
	HeldFraction float64
}

// Report computes the current report.
func (l *L) Report() Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := mono()
	idle := l.idle
	if l.holder == nil && now > l.idleFrom {
		idle += now - l.idleFrom
	}
	rep := Report{Idle: idle, Elapsed: now - l.started}
	lots := make([]float64, 0, len(l.entities))
	for _, e := range l.entities {
		er := EntityReport{
			Name:     e.name,
			Ops:      e.ops,
			Hold:     e.hold,
			LOT:      e.hold + idle,
			HoldDist: metrics.Summarize(e.holds),
			WaitDist: metrics.Summarize(e.waits),
		}
		rep.Entities = append(rep.Entities, er)
		lots = append(lots, float64(er.LOT))
	}
	sort.Slice(rep.Entities, func(i, j int) bool {
		return rep.Entities[i].Hold > rep.Entities[j].Hold
	})
	rep.JainLOT = metrics.Jain(lots)
	if rep.Elapsed > 0 {
		rep.HeldFraction = float64(rep.Elapsed-idle) / float64(rep.Elapsed)
	}
	return rep
}

// Subverted applies the paper's §2.3 heuristic: the lock is likely
// subverting the scheduler when most time is spent inside critical
// sections (held > 50% of the run) and hold times are skewed across
// entities (Jain over LOT below 0.9).
func (r Report) Subverted() bool {
	return r.HeldFraction > 0.5 && r.JainLOT < 0.9 && len(r.Entities) > 1
}

// String renders the report as a table (µs quantiles, like Table 1).
func (r Report) String() string {
	t := metrics.NewTable("lockstat report",
		"entity", "ops", "hold", "LOT", "hold p50µs", "hold p99µs", "wait p99µs")
	for _, e := range r.Entities {
		t.AddRow(e.Name, e.Ops,
			e.Hold.Round(time.Millisecond).String(),
			e.LOT.Round(time.Millisecond).String(),
			metrics.Micros(e.HoldDist.P50),
			metrics.Micros(e.HoldDist.P99),
			metrics.Micros(e.WaitDist.P99))
	}
	return t.String()
}
