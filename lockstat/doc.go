// Package lockstat instruments existing locks with the measurements this
// repository's reproduction is built on: per-entity lock hold times, wait
// times, and lock-opportunity fairness. Wrap a lock you suspect of
// subverting your scheduler, run your workload, and read the report — the
// same methodology as the paper's Table 1 and Section 3.
//
// Use it to answer, for your own application, the two questions of paper
// §2.3: do critical-section lengths differ across threads, and is a large
// fraction of time spent inside critical sections? If both are yes, the
// lock dictates CPU allocation and a scheduler-cooperative lock (package
// scl) will restore control.
//
// # Paper-to-code map
//
// The measurements correspond to the paper as follows:
//
//   - Hold-time distributions per entity (Report.Entities, each with
//     hold/wait quantiles) — the methodology behind Table 1's
//     per-application critical-section profiles.
//   - Lock opportunity time, Report-level: an entity's own hold time plus
//     the time the lock sat idle (paper §3, equation 1) — the quantity
//     SCLs equalize. Computed per entity in the report.
//   - Jain's fairness index over lock opportunity times (Report.JainLOT)
//     — the paper's fairness measure (§3.1); 1 is perfectly fair, 1/n is
//     one entity taking everything.
//   - Report.Subverted — the §2.3 diagnosis packaged as a predicate: held
//     fraction above one half (Report.HeldFraction) combined with a skewed
//     LOT distribution means lock usage, not the scheduler, is deciding
//     who runs.
//
// lockstat is diagnosis only: it observes a lock you already have. To fix
// a subverted lock, switch it to scl.Mutex (or scl.RWLock) — see the scl
// package documentation and examples/diagnose for the full workflow. For
// continuous (rather than one-shot) observation of scl locks themselves,
// see the Tracer interface in package scl and the exporters in scl/export.
package lockstat
