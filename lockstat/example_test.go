package lockstat_test

import (
	"fmt"
	"sync"
	"time"

	"scl/lockstat"
)

// Wrap an existing lock, attribute usage to named entities, and read the
// subversion diagnosis — the paper's §2.3 methodology on your own lock.
func ExampleWrap() {
	var mu sync.Mutex
	l := lockstat.Wrap(&mu)

	// One handle per schedulable entity. The "batch" job runs critical
	// sections 50× longer than the "interactive" one.
	batch := l.Handle("batch")
	interactive := l.Handle("interactive")
	for i := 0; i < 5; i++ {
		batch.Lock()
		time.Sleep(5 * time.Millisecond)
		batch.Unlock()
		interactive.Lock()
		time.Sleep(100 * time.Microsecond)
		interactive.Unlock()
	}

	rep := l.Report()
	fmt.Println("entities measured:", len(rep.Entities))
	fmt.Println("dominant holder:", rep.Entities[0].Name)
	fmt.Println("subverted:", rep.Subverted())
	// Output:
	// entities measured: 2
	// dominant holder: batch
	// subverted: true
}
