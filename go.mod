module scl

go 1.22
