package scl

import (
	"context"
	"flag"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scl/trace"
)

// stressLen is the per-test duration of the contended stress suites. The
// default keeps them short enough for the race gate while still crossing
// many slice boundaries (slices are 50µs–1ms below); soak runs raise it,
// e.g. `go test -race -run Stress -scl.stress 30s .`.
var stressLen = flag.Duration("scl.stress", 300*time.Millisecond, "duration of each contended stress run")

// stressDuration returns the configured stress length, shortened under
// -short so `go test -short ./...` pays milliseconds, not seconds.
func stressDuration() time.Duration {
	if testing.Short() {
		return 50 * time.Millisecond
	}
	return *stressLen
}

// TestMutexStressContended hammers one Mutex from N goroutines spread
// over M entities (some sharing an entity through Sibling) and checks the
// two invariants the fast path must not break: mutual exclusion (a
// plainly-guarded counter stays consistent) and no lost wakeups (every
// goroutine keeps making progress to the deadline; a dropped grant would
// hang the test).
func TestMutexStressContended(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})

	const entities = 4
	const perEntity = 2 // goroutines per entity (siblings)
	var handles []*Handle
	for e := 0; e < entities; e++ {
		h := m.Register()
		handles = append(handles, h)
		for s := 1; s < perEntity; s++ {
			handles = append(handles, h.Sibling())
		}
	}

	var guarded int64 // mutated only inside the critical section, unsynchronized
	var inCS atomic.Int32
	var violations atomic.Int64
	ops := make([]int64, len(handles))

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				h.Lock()
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				guarded++
				v := guarded
				runtime.Gosched() // widen the window for exclusion violations
				if guarded != v {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Unlock()
				ops[i]++
			}
		}(i, h)
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d mutual-exclusion violations", n)
	}
	var total int64
	for i, n := range ops {
		if n == 0 {
			t.Errorf("goroutine %d made no progress (lost wakeup?)", i)
		}
		total += n
	}
	if guarded != total {
		t.Fatalf("guarded counter = %d, want %d (lost increments)", guarded, total)
	}
	s := m.Stats()
	var acq int64
	for _, id := range s.IDs() {
		acq += s.Acquisitions[id]
	}
	if acq != total {
		t.Fatalf("stats count %d acquisitions, observed %d", acq, total)
	}
	for _, h := range handles {
		h.Close()
	}
}

// TestMutexStressProportionalShare saturates a Mutex with equal-weight
// entities that each hog their critical sections, and checks every entity
// receives lock opportunity within 2× of its proportional share — the
// paper's core guarantee, which the deferred fast-path accounting must
// preserve.
func TestMutexStressProportionalShare(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive stress")
	}
	m := NewMutex(Options{Slice: time.Millisecond})
	const entities = 3
	var handles []*Handle
	for e := 0; e < entities; e++ {
		handles = append(handles, m.Register())
	}
	deadline := time.Now().Add(2 * stressDuration())
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				h.Lock()
				spinFor(50 * time.Microsecond) // a hog: CS ≈ half a slice
				h.Unlock()
			}
		}(h)
	}
	wg.Wait()

	s := m.Stats()
	share := 1.0 / entities
	for _, h := range handles {
		frac := float64(s.LOT(h.ID())) / float64(s.Elapsed)
		if frac < share/2 || frac > 2*share {
			t.Errorf("entity %d lock opportunity fraction %.3f, want within 2x of share %.3f",
				h.ID(), frac, share)
		}
	}
}

// spinFor busy-waits without yielding the lock, modeling a CPU-bound
// critical section (sleeping would make every hold look identical under
// the scheduler's timer resolution).
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// TestRWLockStressContended drives an RWLock with concurrent readers and
// writers and checks reader/writer exclusion: a writer must never observe
// another writer or any reader inside the lock, and readers must never
// observe an active writer.
func TestRWLockStressContended(t *testing.T) {
	l := NewRWLock(9, 1, 200*time.Microsecond)

	var readers atomic.Int32
	var writers atomic.Int32
	var violations atomic.Int64
	var guarded int64 // written only by writers, under the write lock

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.RLock()
				readers.Add(1)
				if writers.Load() != 0 {
					violations.Add(1)
				}
				_ = guarded
				readers.Add(-1)
				l.RUnlock()
			}
		}()
	}
	var wrote int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.WLock()
				if writers.Add(1) != 1 || readers.Load() != 0 {
					violations.Add(1)
				}
				guarded++
				atomic.AddInt64(&wrote, 1)
				writers.Add(-1)
				l.WUnlock()
			}
		}()
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d rw exclusion violations", n)
	}
	if guarded != wrote {
		t.Fatalf("guarded counter = %d, want %d", guarded, wrote)
	}
	s := l.Stats()
	if s.ReaderOps == 0 || s.WriterOps == 0 {
		t.Fatalf("starved class: %d reader / %d writer ops", s.ReaderOps, s.WriterOps)
	}
}

// TestMutexTracerSwapDuringStress swaps tracers in and out while
// goroutines hammer the lock through the fast path; under -race this
// pins down the SetTracer data race the atomic tracer pointer fixes, and
// the recording tracer's event stream must stay well-formed (no acquire
// after acquire for the same exclusive lock).
func TestMutexTracerSwapDuringStress(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})
	a := m.Register()
	b := m.Register()

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	for _, h := range []*Handle{a, b} {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				h.Lock()
				h.Unlock()
			}
		}(h)
	}

	rec := &recTracer{}
	ring := trace.NewRing(1 << 10)
	for time.Now().Before(deadline) {
		m.SetTracer(rec)
		time.Sleep(time.Millisecond)
		m.SetTracer(ring)
		time.Sleep(time.Millisecond)
		m.SetTracer(nil)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	if len(rec.events()) == 0 {
		t.Fatal("recording tracer saw no events while installed")
	}
}

// TestMutexStressSiblingMix hammers the lock with three sibling handles of
// one entity plus a foreign entity under a tiny slice — the mix that
// exercises the intra-class handoff against the fast path hardest. If
// mutual exclusion ever breaks (two concurrent holders), the guarded
// counter detects it. (Folded in from the PR 2 throwaway review test,
// which ran a fixed 3 s; the duration now follows -scl.stress and -short.)
func TestMutexStressSiblingMix(t *testing.T) {
	m := NewMutex(Options{Slice: 50 * time.Microsecond})
	hA := m.Register()
	hA2 := hA.Sibling()
	hA3 := hA.Sibling()
	hB := m.Register()

	var inCS atomic.Int32
	var violations atomic.Int32
	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup

	work := func(h *Handle) {
		defer wg.Done()
		for time.Now().Before(deadline) {
			h.Lock()
			if inCS.Add(1) != 1 {
				violations.Add(1)
			}
			for i := 0; i < 200; i++ {
				if inCS.Load() != 1 {
					violations.Add(1)
					break
				}
			}
			inCS.Add(-1)
			h.Unlock()
		}
	}
	wg.Add(4)
	go work(hA)
	go work(hA2)
	go work(hA3)
	go work(hB)
	wg.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("mutual exclusion violated %d times", n)
	}
}

// TestMutexStressCancel is the cancellation-race suite: waiters abandon
// randomly under a tiny slice while others keep acquiring, checking the
// three invariants cancellation-safe waiter removal must preserve:
//
//   - mutual exclusion (guarded-counter pattern: a successful LockContext
//     is a real exclusive hold);
//   - no lost grants — a grant racing an abandon is re-routed, never
//     dropped, so the lock keeps making progress throughout and a final
//     sequential acquire on every handle succeeds;
//   - no accountant leak: after all handles close, the accounting engine
//     tracks exactly as many entities as before the stress (an abandoned
//     waiter leaves the books as if it never queued).
//
// Run it long (the acceptance soak) with:
//
//	go test -race -run TestMutexStressCancel -scl.stress 30s .
func TestMutexStressCancel(t *testing.T) {
	m := NewMutex(Options{Slice: 50 * time.Microsecond})

	const entities = 4
	const perEntity = 2
	var handles []*Handle
	for e := 0; e < entities; e++ {
		h := m.Register()
		handles = append(handles, h)
		for s := 1; s < perEntity; s++ {
			handles = append(handles, h.Sibling())
		}
	}
	baseline := func() int {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.acct.Len()
	}()

	var guarded int64 // mutated only inside the critical section, unsynchronized
	var inCS atomic.Int32
	var violations atomic.Int64
	var acquired, cancelled atomic.Int64
	ops := make([]int64, len(handles))

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for time.Now().Before(deadline) {
				// A spread of deadlines around the slice length: some
				// cancel before the queue moves, some mid-queue, some
				// race the grant itself, some acquire cleanly.
				var ctx context.Context
				var cancel context.CancelFunc
				switch rng.Intn(4) {
				case 0:
					ctx, cancel = context.WithTimeout(context.Background(), time.Duration(rng.Intn(30))*time.Microsecond)
				case 1:
					ctx, cancel = context.WithTimeout(context.Background(), time.Duration(50+rng.Intn(100))*time.Microsecond)
				default:
					ctx, cancel = context.WithTimeout(context.Background(), time.Second)
				}
				err := h.LockContext(ctx)
				if err != nil {
					cancel()
					cancelled.Add(1)
					continue
				}
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				guarded++
				v := guarded
				runtime.Gosched() // widen the window for exclusion violations
				if guarded != v {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Unlock()
				cancel()
				acquired.Add(1)
				ops[i]++
			}
		}(i, h)
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d mutual-exclusion violations", n)
	}
	var total int64
	for _, n := range ops {
		total += n
	}
	if guarded != total {
		t.Fatalf("guarded counter = %d, want %d (lost increments)", guarded, total)
	}
	if acquired.Load() == 0 {
		t.Fatal("no goroutine ever acquired — the lock wedged")
	}
	// Liveness after the storm: if any grant had been dropped, the queue
	// would be wedged behind a transfer that never completes and these
	// sequential acquisitions would time out.
	for i, h := range handles {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := h.LockContext(ctx); err != nil {
			t.Fatalf("handle %d could not acquire after stress (lost grant?): %v", i, err)
		}
		h.Unlock()
		cancel()
	}
	t.Logf("acquired %d, cancelled %d", acquired.Load(), cancelled.Load())

	// Cancellation must not leak accounting state: closing every handle
	// returns the accountant to empty, exactly as if no waiter had ever
	// queued (abandoned attempts registered nothing).
	if got := func() int {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.acct.Len()
	}(); got != baseline {
		t.Fatalf("accountant tracks %d entities during stress, want baseline %d", got, baseline)
	}
	for _, h := range handles {
		h.Close()
	}
	if got := func() int {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.acct.Len()
	}(); got != 0 {
		t.Fatalf("accountant still tracks %d entities after all handles closed", got)
	}
}

// TestRWLockStressCancel drives an RWLock with readers and writers whose
// contexts cancel randomly, checking rw exclusion and that abandoned
// grants are released rather than lost (the lock keeps serving both
// classes and drains cleanly).
func TestRWLockStressCancel(t *testing.T) {
	l := NewRWLock(3, 1, 200*time.Microsecond)

	var readers atomic.Int32
	var writers atomic.Int32
	var violations atomic.Int64
	var acquired atomic.Int64

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 100))
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(20+rng.Intn(400))*time.Microsecond)
				if err := l.RLockContext(ctx); err == nil {
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					l.RUnlock()
					acquired.Add(1)
				}
				cancel()
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 200))
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(20+rng.Intn(400))*time.Microsecond)
				if err := l.WLockContext(ctx); err == nil {
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					writers.Add(-1)
					l.WUnlock()
					acquired.Add(1)
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d rw exclusion violations", n)
	}
	if acquired.Load() == 0 {
		t.Fatal("no acquisition ever succeeded — the lock wedged")
	}
	// Drain check: both classes must still be able to get in.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := l.WLockContext(ctx); err != nil {
		t.Fatalf("writer cannot acquire after stress (lost grant?): %v", err)
	}
	l.WUnlock()
	if err := l.RLockContext(ctx); err != nil {
		t.Fatalf("reader cannot acquire after stress (lost grant?): %v", err)
	}
	l.RUnlock()
}

// TestMutexStressCombine hammers one Mutex with a mix of combining
// (Handle.Do) and classic (Lock/Unlock, LockContext) users, so drained
// batches, withdrawn publishers, rejected banned publishers, and
// ordinary grants interleave under the race detector. The invariants
// are those of TestMutexStressContended — mutual exclusion over a
// plainly-guarded counter, no lost wakeups — plus exactly-once
// execution of every published section (the guarded total must equal
// the op count) and clean accounting teardown. Soak it with
//
//	go test -race -run TestMutexStressCombine -scl.stress 30s .
func TestMutexStressCombine(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})

	const entities = 6
	var handles []*Handle
	for e := 0; e < entities; e++ {
		handles = append(handles, m.Register())
	}

	var guarded int64 // mutated only inside critical sections, unsynchronized
	var inCS atomic.Int32
	var violations atomic.Int64
	ops := make([]int64, len(handles))

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 300))
			section := func() {
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				guarded++
				v := guarded
				runtime.Gosched() // widen the window for exclusion violations
				if guarded != v {
					violations.Add(1)
				}
				inCS.Add(-1)
			}
			for time.Now().Before(deadline) {
				switch rng.Intn(4) {
				case 0: // classic path, same section
					h.Lock()
					section()
					h.Unlock()
				case 1: // cancellable classic acquire racing the combiners
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(30+rng.Intn(200))*time.Microsecond)
					if err := h.LockContext(ctx); err != nil {
						cancel()
						continue
					}
					section()
					h.Unlock()
					cancel()
				default:
					h.Do(section)
				}
				ops[i]++
			}
		}(i, h)
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d mutual-exclusion violations", n)
	}
	var total int64
	for i, n := range ops {
		if n == 0 {
			t.Errorf("goroutine %d made no progress (lost wakeup?)", i)
		}
		total += n
	}
	if guarded != total {
		t.Fatalf("guarded counter = %d, want %d (lost or double-run sections)", guarded, total)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after combine stress: %v", err)
	}
	// Liveness after the storm: a stranded publisher or a claimed request
	// that never resolved would wedge these sequential combined sections.
	for i, h := range handles {
		done := make(chan struct{})
		go func(h *Handle) { h.Do(func() {}); close(done) }(h)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("handle %d: Do wedged after stress (stranded publisher?)", i)
		}
	}
	for _, h := range handles {
		h.Close()
	}
	if n := m.Entities(); n != 0 {
		t.Fatalf("%d entities still registered after all handles closed", n)
	}
}

// TestRWLockStressCombine is the RW analogue: writers route their
// sections through RWLock.Do while cancellable readers flood the other
// class, so writer-side combining drains race phase flips, reader
// grants, and abandoning waiters. Checks rw exclusion, exactly-once
// writer sections, and post-storm liveness for both classes.
func TestRWLockStressCombine(t *testing.T) {
	l := NewRWLock(3, 1, 200*time.Microsecond)

	var readers atomic.Int32
	var writers atomic.Int32
	var violations atomic.Int64
	var wrote atomic.Int64
	var wops atomic.Int64

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 400))
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(20+rng.Intn(400))*time.Microsecond)
				if err := l.RLockContext(ctx); err == nil {
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					l.RUnlock()
				}
				cancel()
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.Do(func() {
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					wrote.Add(1)
					writers.Add(-1)
				})
				wops.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d rw exclusion violations", n)
	}
	if got, want := wrote.Load(), wops.Load(); got != want {
		t.Fatalf("%d writer sections ran, want %d (lost or double-run sections)", got, want)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants after combine stress: %v", err)
	}
	// Drain check: both classes must still be able to get in, including
	// through the combining path.
	done := make(chan struct{})
	go func() { l.Do(func() {}); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer Do wedged after stress (stranded publisher?)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := l.RLockContext(ctx); err != nil {
		t.Fatalf("reader cannot acquire after stress (lost grant?): %v", err)
	}
	l.RUnlock()
}
