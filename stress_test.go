package scl

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scl/trace"
)

// stressDuration keeps the contended suites short enough for the race
// gate while still crossing many slice boundaries (slices are 100µs–1ms
// below).
const stressDuration = 300 * time.Millisecond

// TestMutexStressContended hammers one Mutex from N goroutines spread
// over M entities (some sharing an entity through Sibling) and checks the
// two invariants the fast path must not break: mutual exclusion (a
// plainly-guarded counter stays consistent) and no lost wakeups (every
// goroutine keeps making progress to the deadline; a dropped grant would
// hang the test).
func TestMutexStressContended(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})

	const entities = 4
	const perEntity = 2 // goroutines per entity (siblings)
	var handles []*Handle
	for e := 0; e < entities; e++ {
		h := m.Register()
		handles = append(handles, h)
		for s := 1; s < perEntity; s++ {
			handles = append(handles, h.Sibling())
		}
	}

	var guarded int64 // mutated only inside the critical section, unsynchronized
	var inCS atomic.Int32
	var violations atomic.Int64
	ops := make([]int64, len(handles))

	deadline := time.Now().Add(stressDuration)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				h.Lock()
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				guarded++
				v := guarded
				runtime.Gosched() // widen the window for exclusion violations
				if guarded != v {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Unlock()
				ops[i]++
			}
		}(i, h)
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d mutual-exclusion violations", n)
	}
	var total int64
	for i, n := range ops {
		if n == 0 {
			t.Errorf("goroutine %d made no progress (lost wakeup?)", i)
		}
		total += n
	}
	if guarded != total {
		t.Fatalf("guarded counter = %d, want %d (lost increments)", guarded, total)
	}
	s := m.Stats()
	var acq int64
	for _, id := range s.IDs() {
		acq += s.Acquisitions[id]
	}
	if acq != total {
		t.Fatalf("stats count %d acquisitions, observed %d", acq, total)
	}
	for _, h := range handles {
		h.Close()
	}
}

// TestMutexStressProportionalShare saturates a Mutex with equal-weight
// entities that each hog their critical sections, and checks every entity
// receives lock opportunity within 2× of its proportional share — the
// paper's core guarantee, which the deferred fast-path accounting must
// preserve.
func TestMutexStressProportionalShare(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive stress")
	}
	m := NewMutex(Options{Slice: time.Millisecond})
	const entities = 3
	var handles []*Handle
	for e := 0; e < entities; e++ {
		handles = append(handles, m.Register())
	}
	deadline := time.Now().Add(2 * stressDuration)
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				h.Lock()
				spinFor(50 * time.Microsecond) // a hog: CS ≈ half a slice
				h.Unlock()
			}
		}(h)
	}
	wg.Wait()

	s := m.Stats()
	share := 1.0 / entities
	for _, h := range handles {
		frac := float64(s.LOT(h.ID())) / float64(s.Elapsed)
		if frac < share/2 || frac > 2*share {
			t.Errorf("entity %d lock opportunity fraction %.3f, want within 2x of share %.3f",
				h.ID(), frac, share)
		}
	}
}

// spinFor busy-waits without yielding the lock, modeling a CPU-bound
// critical section (sleeping would make every hold look identical under
// the scheduler's timer resolution).
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// TestRWLockStressContended drives an RWLock with concurrent readers and
// writers and checks reader/writer exclusion: a writer must never observe
// another writer or any reader inside the lock, and readers must never
// observe an active writer.
func TestRWLockStressContended(t *testing.T) {
	l := NewRWLock(9, 1, 200*time.Microsecond)

	var readers atomic.Int32
	var writers atomic.Int32
	var violations atomic.Int64
	var guarded int64 // written only by writers, under the write lock

	deadline := time.Now().Add(stressDuration)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.RLock()
				readers.Add(1)
				if writers.Load() != 0 {
					violations.Add(1)
				}
				_ = guarded
				readers.Add(-1)
				l.RUnlock()
			}
		}()
	}
	var wrote int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.WLock()
				if writers.Add(1) != 1 || readers.Load() != 0 {
					violations.Add(1)
				}
				guarded++
				atomic.AddInt64(&wrote, 1)
				writers.Add(-1)
				l.WUnlock()
			}
		}()
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d rw exclusion violations", n)
	}
	if guarded != wrote {
		t.Fatalf("guarded counter = %d, want %d", guarded, wrote)
	}
	s := l.Stats()
	if s.ReaderOps == 0 || s.WriterOps == 0 {
		t.Fatalf("starved class: %d reader / %d writer ops", s.ReaderOps, s.WriterOps)
	}
}

// TestMutexTracerSwapDuringStress swaps tracers in and out while
// goroutines hammer the lock through the fast path; under -race this
// pins down the SetTracer data race the atomic tracer pointer fixes, and
// the recording tracer's event stream must stay well-formed (no acquire
// after acquire for the same exclusive lock).
func TestMutexTracerSwapDuringStress(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})
	a := m.Register()
	b := m.Register()

	deadline := time.Now().Add(stressDuration)
	var wg sync.WaitGroup
	for _, h := range []*Handle{a, b} {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				h.Lock()
				h.Unlock()
			}
		}(h)
	}

	rec := &recTracer{}
	ring := trace.NewRing(1 << 10)
	for time.Now().Before(deadline) {
		m.SetTracer(rec)
		time.Sleep(time.Millisecond)
		m.SetTracer(ring)
		time.Sleep(time.Millisecond)
		m.SetTracer(nil)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	if len(rec.events()) == 0 {
		t.Fatal("recording tracer saw no events while installed")
	}
}
