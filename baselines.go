package scl

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The baseline locks below are the traditional primitives the paper
// compares SCLs against (§3): a test-and-set spinlock, a ticket lock, and
// a barging (pthread-style) sleeping mutex. They guarantee, at best,
// acquisition fairness — never usage fairness — and so all of them exhibit
// scheduler subversion under asymmetric critical sections.

// SpinLock is a test-and-set spinlock. Waiters burn CPU and acquisition
// order is arbitrary: a releasing goroutine that immediately re-locks
// usually wins (barging).
type SpinLock struct {
	state atomic.Int32
}

// Lock spins until the lock is acquired.
func (l *SpinLock) Lock() {
	for {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		runtime.Gosched()
	}
}

// Unlock releases the lock.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(1, 0) {
		panic("scl: SpinLock.Unlock of unlocked lock")
	}
}

var _ sync.Locker = (*SpinLock)(nil)

// TicketLock is a fetch-and-add ticket lock: strict FIFO acquisition
// order (Mellor-Crummey & Scott). Acquisition fairness still subverts the
// scheduler when critical-section lengths differ — the long-CS thread
// receives hold time proportional to its CS length (paper Figure 2c).
type TicketLock struct {
	next    atomic.Int64
	serving atomic.Int64
}

// Lock takes a ticket and waits for its turn.
func (l *TicketLock) Lock() {
	ticket := l.next.Add(1) - 1
	for l.serving.Load() != ticket {
		runtime.Gosched()
	}
}

// Unlock serves the next ticket.
func (l *TicketLock) Unlock() {
	l.serving.Add(1)
}

var _ sync.Locker = (*TicketLock)(nil)

// BargingMutex is an unfair sleeping mutex in the style of a pthread
// mutex: a free lock goes to whoever CASes first, and woken waiters race
// (and usually lose) against running threads. One thread with a short
// non-critical section can dominate it indefinitely (paper Figure 2a).
//
// Go's sync.Mutex enters a "starvation mode" that hands the lock to the
// oldest waiter after 1ms, which hides exactly the pathology the paper
// studies — hence this explicit barging implementation.
type BargingMutex struct {
	mu      sync.Mutex // protects waiters
	state   atomic.Int32
	waiters []chan struct{}
}

// Lock acquires the mutex, sleeping (after a brief spin) while contended.
func (l *BargingMutex) Lock() {
	// Brief active phase: barge if possible.
	for i := 0; i < 16; i++ {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		runtime.Gosched()
	}
	for {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		ch := make(chan struct{}, 1)
		l.mu.Lock()
		// Re-check after registering, or a concurrent Unlock may have
		// missed us.
		if l.state.CompareAndSwap(0, 1) {
			l.mu.Unlock()
			return
		}
		l.waiters = append(l.waiters, ch)
		l.mu.Unlock()
		<-ch
		// Woken: race again from the start (barging semantics).
	}
}

// Unlock releases the mutex and wakes one waiter, if any. The waiter must
// still win the race against running threads.
func (l *BargingMutex) Unlock() {
	if !l.state.CompareAndSwap(1, 0) {
		panic("scl: BargingMutex.Unlock of unlocked lock")
	}
	l.mu.Lock()
	if len(l.waiters) > 0 {
		ch := l.waiters[0]
		l.waiters = l.waiters[1:]
		ch <- struct{}{}
	}
	l.mu.Unlock()
}

var _ sync.Locker = (*BargingMutex)(nil)
